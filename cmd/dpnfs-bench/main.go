// dpnfs-bench regenerates the paper's evaluation figures (§6) from the
// command line.
//
// Usage:
//
//	dpnfs-bench -fig 6a                 # one figure at the paper's sizes
//	dpnfs-bench -fig all -scale 0.1     # everything, 10% data sizes
//	dpnfs-bench -fig 8d -clients 1,4,8
//	dpnfs-bench -fig degraded           # throughput across a storage-node crash
//	dpnfs-bench -fig recovery           # same crash on the WAL backend, with replay
//	dpnfs-bench -fig window             # I/O-engine sliding window vs waves
//	dpnfs-bench -fig tail               # read-latency percentiles, hedged vs not
//	dpnfs-bench -fig rebalance          # foreground writes under a node join
//	dpnfs-bench -fig sweep              # open-loop scaling, 64 → 10k clients
//	dpnfs-bench -fig integrity          # verified reads under bit rot + scrub
//	dpnfs-bench -fig 6a -scale 0.01 -transport tcp   # real loopback sockets
//	dpnfs-bench -fig 6a -scale 0.1 -report BENCH_6a.json
//
// The degraded figure (docs/FAULTS.md) replays a deterministic fault plan —
// crash a storage node mid-run, restart it later — and reports aggregate
// MB/s before, during, and after the outage per architecture.  The recovery
// figure re-runs that schedule on the write-ahead-logged backend
// (docs/BACKENDS.md): the crash discards the victim's volatile state and
// the restart replays its journal.  Both run on the sim transport only.
//
// With -transport=tcp the same workloads run end-to-end over real TCP
// connections on this host: wall-clock numbers that measure the protocol
// implementation, not the paper's simulated testbed.
//
// With -report the run also writes a machine-readable JSON report: every
// figure's series plus a per-figure snapshot of the unified metrics
// registry (docs/METRICS.md) accumulated across the whole sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dpnfs/directpnfs"
	"dpnfs/internal/cluster"
)

func main() {
	fig := flag.String("fig", "all", "figure id (6a..6e, 7a..7d, 8a..8d, ssh, degraded, recovery, window, tail, rebalance, sweep, integrity) or 'all'")
	scale := flag.Float64("scale", 1.0, "data-size scale factor (1.0 = paper sizes)")
	clients := flag.String("clients", "", "comma-separated client counts (default: per figure)")
	transport := flag.String("transport", "sim", "cluster wiring: sim (virtual time) or tcp (real loopback sockets)")
	report := flag.String("report", "", "write a JSON report (figures + metrics snapshots) to this path")
	flag.Parse()

	opt := directpnfs.FigureOptions{Scale: *scale}
	switch *transport {
	case "sim", "":
		opt.Transport = cluster.TransportSim
	case "tcp":
		opt.Transport = cluster.TransportTCP
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q (want sim or tcp)\n", *transport)
		os.Exit(2)
	}
	if *clients != "" {
		for _, part := range strings.Split(*clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bad client count %q\n", part)
				os.Exit(2)
			}
			opt.Clients = append(opt.Clients, n)
		}
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = directpnfs.FigureIDs
		if opt.Transport == cluster.TransportTCP {
			// The degraded/recovery/rebalance figures' throughput windows
			// and the tail/sweep figures' latency percentiles are
			// virtual-time intervals; skip them rather than failing the
			// whole sweep.
			kept := ids[:0:0]
			for _, id := range ids {
				if id == "degraded" || id == "recovery" || id == "tail" || id == "rebalance" || id == "sweep" || id == "integrity" {
					fmt.Fprintf(os.Stderr, "skipping %s: sim transport only\n", id)
					continue
				}
				kept = append(kept, id)
			}
			ids = kept
		}
	}
	var rep *directpnfs.BenchReport
	if *report != "" {
		rep = directpnfs.NewBenchReport(opt)
	}
	for _, id := range ids {
		var figure directpnfs.Figure
		var err error
		if rep != nil {
			figure, err = rep.Add(id, opt)
		} else {
			figure, err = directpnfs.Generate(id, opt)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(figure)
	}
	if rep != nil {
		if err := rep.WriteFile(*report); err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report: wrote %s (%d figures)\n", *report, len(rep.Figures))
	}
}
