// dpnfs-bench regenerates the paper's evaluation figures (§6) from the
// command line.
//
// Usage:
//
//	dpnfs-bench -fig 6a                 # one figure at the paper's sizes
//	dpnfs-bench -fig all -scale 0.1     # everything, 10% data sizes
//	dpnfs-bench -fig 8d -clients 1,4,8
//	dpnfs-bench -fig 6a -scale 0.01 -transport tcp   # real loopback sockets
//
// With -transport=tcp the same workloads run end-to-end over real TCP
// connections on this host: wall-clock numbers that measure the protocol
// implementation, not the paper's simulated testbed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dpnfs/directpnfs"
	"dpnfs/internal/cluster"
)

func main() {
	fig := flag.String("fig", "all", "figure id (6a..6e, 7a..7d, 8a..8d, ssh) or 'all'")
	scale := flag.Float64("scale", 1.0, "data-size scale factor (1.0 = paper sizes)")
	clients := flag.String("clients", "", "comma-separated client counts (default: per figure)")
	transport := flag.String("transport", "sim", "cluster wiring: sim (virtual time) or tcp (real loopback sockets)")
	flag.Parse()

	opt := directpnfs.FigureOptions{Scale: *scale}
	switch *transport {
	case "sim", "":
		opt.Transport = cluster.TransportSim
	case "tcp":
		opt.Transport = cluster.TransportTCP
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q (want sim or tcp)\n", *transport)
		os.Exit(2)
	}
	if *clients != "" {
		for _, part := range strings.Split(*clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bad client count %q\n", part)
				os.Exit(2)
			}
			opt.Clients = append(opt.Clients, n)
		}
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = directpnfs.FigureIDs
	}
	for _, id := range ids {
		gen, ok := directpnfs.Figures[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; known: %v\n", id, directpnfs.FigureIDs)
			os.Exit(2)
		}
		figure, err := gen(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(figure)
	}
}
