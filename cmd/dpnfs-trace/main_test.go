package main

import (
	"strings"
	"testing"
)

// TestTraceSmokeAllArchitectures runs one small simulated trace per
// architecture and asserts the utilization table comes back non-empty: an
// aggregate-throughput header plus at least one back-end node row with
// busy-time columns.
func TestTraceSmokeAllArchitectures(t *testing.T) {
	archs := []string{"direct-pnfs", "pvfs2", "pnfs-2tier", "pnfs-3tier", "nfsv4"}
	for _, arch := range archs {
		arch := arch
		t.Run(arch, func(t *testing.T) {
			var out strings.Builder
			err := run([]string{"-arch", arch, "-clients", "1", "-mb", "4"}, &out)
			if err != nil {
				t.Fatalf("trace %s: %v", arch, err)
			}
			got := out.String()
			if !strings.Contains(got, "MB/s aggregate") {
				t.Errorf("%s: no throughput header in output:\n%s", arch, got)
			}
			if !strings.Contains(got, "io0") {
				t.Errorf("%s: no back-end node rows in output:\n%s", arch, got)
			}
			if !strings.Contains(got, "nic-tx") || !strings.Contains(got, "disk") {
				t.Errorf("%s: utilization columns missing:\n%s", arch, got)
			}
			if strings.Contains(got, "→ 0.0 MB/s") {
				t.Errorf("%s: zero aggregate throughput — trace is vacuous:\n%s", arch, got)
			}
		})
	}
}
