// dpnfs-trace runs one IOR workload on a chosen architecture and dumps
// per-node utilization — which resource (NIC, CPU, disk) each back-end node
// spent its time on.  This is the bottleneck analysis behind the paper's
// §6.2.1 discussion.
//
// Usage:
//
//	dpnfs-trace -arch direct-pnfs -clients 8 -mb 100 -block 2097152
//	dpnfs-trace -arch pnfs-2tier -read
package main

import (
	"flag"
	"fmt"
	"os"

	"dpnfs/directpnfs"
)

func main() {
	arch := flag.String("arch", "direct-pnfs", "architecture: direct-pnfs, pvfs2, pnfs-2tier, pnfs-3tier, nfsv4")
	clients := flag.Int("clients", 4, "number of clients")
	mb := flag.Int64("mb", 100, "per-client data volume in MB")
	block := flag.Int64("block", 2<<20, "application request size in bytes")
	read := flag.Bool("read", false, "measure reads (warm server cache) instead of writes")
	flag.Parse()

	cl := directpnfs.New(directpnfs.Config{Arch: directpnfs.Arch(*arch), Clients: *clients})
	res, err := directpnfs.IOR(cl, directpnfs.IORConfig{
		FileSize: *mb << 20,
		Block:    *block,
		Separate: true,
		Read:     *read,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mode := "write"
	if *read {
		mode = "read"
	}
	fmt.Printf("%s %s: %d clients × %d MB @ %d B blocks → %.1f MB/s aggregate (%v virtual)\n\n",
		*arch, mode, *clients, *mb, *block, res.ThroughputMBs(), res.Elapsed.Round(1e6))
	fmt.Printf("%-6s %12s %12s %12s %12s %8s %8s %8s\n",
		"node", "nic-tx", "nic-rx", "cpu", "disk", "reads", "writes", "misses")
	for _, s := range cl.Stats() {
		fmt.Printf("%-6s %12v %12v %12v %12v %8d %8d %8d\n",
			s.Name, s.NICTx.Round(1e6), s.NICRx.Round(1e6), s.CPUBusy.Round(1e6),
			s.DiskBusy.Round(1e6), s.DiskReads, s.DiskWrites, s.DiskCacheMisses)
	}
}
