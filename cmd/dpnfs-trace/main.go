// dpnfs-trace runs one IOR workload on a chosen architecture and dumps
// per-node utilization — which resource (NIC, CPU, disk) each back-end node
// spent its time on.  This is the bottleneck analysis behind the paper's
// §6.2.1 discussion.
//
// Usage:
//
//	dpnfs-trace -arch direct-pnfs -clients 8 -mb 100 -block 2097152
//	dpnfs-trace -arch pnfs-2tier -read
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"dpnfs/directpnfs"
)

// errUsage marks a flag-parse failure whose message the FlagSet has already
// printed; main exits 2 without repeating it (flag.ExitOnError behaviour).
var errUsage = errors.New("usage")

// run executes one trace with the given command-line arguments, writing the
// utilization table to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dpnfs-trace", flag.ContinueOnError)
	arch := fs.String("arch", "direct-pnfs", "architecture: direct-pnfs, pvfs2, pnfs-2tier, pnfs-3tier, nfsv4")
	clients := fs.Int("clients", 4, "number of clients")
	mb := fs.Int64("mb", 100, "per-client data volume in MB")
	block := fs.Int64("block", 2<<20, "application request size in bytes")
	read := fs.Bool("read", false, "measure reads (warm server cache) instead of writes")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	cl := directpnfs.New(directpnfs.Config{Arch: directpnfs.Arch(*arch), Clients: *clients})
	res, err := directpnfs.IOR(cl, directpnfs.IORConfig{
		FileSize: *mb << 20,
		Block:    *block,
		Separate: true,
		Read:     *read,
	})
	if err != nil {
		return err
	}
	mode := "write"
	if *read {
		mode = "read"
	}
	fmt.Fprintf(out, "%s %s: %d clients × %d MB @ %d B blocks → %.1f MB/s aggregate (%v virtual)\n\n",
		*arch, mode, *clients, *mb, *block, res.ThroughputMBs(), res.Elapsed.Round(1e6))
	fmt.Fprintf(out, "%-6s %12s %12s %12s %12s %8s %8s %8s\n",
		"node", "nic-tx", "nic-rx", "cpu", "disk", "reads", "writes", "misses")
	for _, s := range cl.Stats() {
		fmt.Fprintf(out, "%-6s %12v %12v %12v %12v %8d %8d %8d\n",
			s.Name, s.NICTx.Round(1e6), s.NICRx.Round(1e6), s.CPUBusy.Round(1e6),
			s.DiskBusy.Round(1e6), s.DiskReads, s.DiskWrites, s.DiskCacheMisses)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
