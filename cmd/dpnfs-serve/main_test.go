package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"dpnfs/internal/cluster"
	"dpnfs/internal/metrics"
)

// TestMetricsEndpoint exports a small Direct-pNFS cluster over TCP, drives
// the selftest workload through the real sockets, and scrapes the /metrics
// endpoint exactly as a Prometheus agent would — the acceptance path for
// the observability subsystem.
func TestMetricsEndpoint(t *testing.T) {
	cl := cluster.New(cluster.Config{
		Arch:      cluster.ArchDirectPNFS,
		Clients:   2,
		Backends:  3,
		Real:      true,
		Transport: cluster.TransportTCP,
	})
	defer cl.Close()
	if err := runSelftest(cl, 2); err != nil {
		t.Fatal(err)
	}

	srv, addr, err := serveMetrics("127.0.0.1:0", cl.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != metrics.TextContentType {
		t.Fatalf("content type %q, want %q", ct, metrics.TextContentType)
	}
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`cluster_info{arch="direct-pnfs",transport="tcp"} 1`,
		`nfs_client_ops_total{arch="direct-pnfs",op="WRITE"}`,
		`nfs_server_compounds_total{arch="direct-pnfs",service="nfs-mds"}`,
		`rpc_client_calls_total{arch="direct-pnfs",transport="tcp",service="nfs-mds"}`,
		"# TYPE nfs_client_op_seconds histogram",
		"pvfs_storage_requests_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}
}
