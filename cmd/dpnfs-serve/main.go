// dpnfs-serve exports a cluster over real TCP on loopback: every NFSv4.1
// and PVFS2 service of the chosen architecture listens on its own socket,
// and the export table (node/service -> host:port) is printed on startup.
// An external client can mount the metadata server's "nfs-mds" address with
// pnfs-demo -connect.
//
// Usage:
//
//	dpnfs-serve                          # Direct-pNFS, serve until SIGINT
//	dpnfs-serve -arch nfsv4 -backends 4
//	dpnfs-serve -backend wal             # write-ahead-logged stores (docs/BACKENDS.md)
//	dpnfs-serve -selftest                # serve, run a workload, exit
//	dpnfs-serve -metrics 127.0.0.1:9090  # pin the /metrics listen address
//
// With -selftest the binary drives a write/fsync/read-back workload from
// -clients concurrent mounts through the exported sockets and exits 0 on
// success — the CI smoke path.
//
// Every run also serves the cluster's unified observability registry
// (docs/METRICS.md) in Prometheus text format at http://<metrics-addr>/metrics;
// the bound address is printed on startup.  -metrics "" disables it.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"dpnfs/internal/cluster"
	"dpnfs/internal/metrics"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

func main() {
	arch := flag.String("arch", string(cluster.ArchDirectPNFS),
		"architecture: direct-pnfs, pvfs2, pnfs-2tier, pnfs-3tier, nfsv4")
	backends := flag.Int("backends", 3, "back-end storage nodes (incl. metadata manager)")
	backend := flag.String("backend", cluster.BackendMem,
		"store backend: mem (volatile), wal (write-ahead logged), cached (WAL behind a memory front)")
	clients := flag.Int("clients", 2, "selftest client mounts")
	selftest := flag.Bool("selftest", false, "run a built-in workload against the export, then exit")
	metricsAddr := flag.String("metrics", "127.0.0.1:0", `Prometheus /metrics listen address ("" disables)`)
	flag.Parse()

	known := false
	for _, a := range cluster.Archs {
		if cluster.Arch(*arch) == a {
			known = true
			break
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown architecture %q; known: %v\n", *arch, cluster.Archs)
		os.Exit(2)
	}
	if _, err := cluster.BackendFactory(*backend); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cl := cluster.New(cluster.Config{
		Arch:      cluster.Arch(*arch),
		Clients:   *clients,
		Backends:  *backends,
		Real:      true,
		Transport: cluster.TransportTCP,
		Backend:   *backend,
	})
	defer cl.Close()

	tr, ok := cl.Transport().(*rpc.TCPTransport)
	if !ok {
		log.Fatal("dpnfs-serve: cluster is not on the TCP transport")
	}
	addrs := tr.Addrs()
	keys := make([]string, 0, len(addrs))
	for k := range addrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%s cluster exported over TCP (%d services):\n", *arch, len(keys))
	for _, k := range keys {
		fmt.Printf("  %-18s %s\n", k, addrs[k])
	}

	if *metricsAddr != "" {
		srv, bound, err := serveMetrics(*metricsAddr, cl.Metrics())
		if err != nil {
			log.Fatalf("metrics endpoint: %v", err)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics\n", bound)
	}

	if *selftest {
		if err := runSelftest(cl, *clients); err != nil {
			log.Fatalf("selftest: %v", err)
		}
		fmt.Println("selftest: OK")
		return
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	fmt.Println("serving (Ctrl-C to stop)")
	<-stop
	fmt.Println("shutting down")
}

// serveMetrics exposes the registry at /metrics on addr and returns the
// server plus the bound address (addr may use port 0).
func serveMetrics(addr string, reg *metrics.Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// runSelftest writes, syncs, and reads back a distinct pattern from every
// client mount through the real sockets.
func runSelftest(cl *cluster.Cluster, clients int) error {
	const size = 256 << 10
	if _, err := cl.RunClient(0, func(ctx *rpc.Ctx, m *cluster.Mount, _ int) error {
		return m.Mkdir(ctx, "/selftest")
	}); err != nil {
		return err
	}
	_, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		path := fmt.Sprintf("/selftest/f%d", i)
		f, err := m.Create(ctx, path)
		if err != nil {
			return err
		}
		buf := make([]byte, size)
		for k := range buf {
			buf[k] = byte(13*i + k)
		}
		if err := m.Write(ctx, f, 0, payload.Real(buf)); err != nil {
			return err
		}
		if err := m.Fsync(ctx, f); err != nil {
			return err
		}
		if err := m.Close(ctx, f); err != nil {
			return err
		}
		f, err = m.Open(ctx, path)
		if err != nil {
			return err
		}
		got, n, err := m.Read(ctx, f, 0, size)
		if err != nil {
			return err
		}
		if n != size || !payload.Equal(got, payload.Real(buf)) {
			return fmt.Errorf("client %d read back %d bytes with wrong content", i, n)
		}
		return m.Close(ctx, f)
	})
	return err
}
