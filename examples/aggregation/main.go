// Aggregation example: Direct-pNFS with a pluggable aggregation driver
// (paper §4.3).  The layout translator passes the parallel file system's
// aggregation scheme through untouched, so an unmodified client can follow
// unconventional striping — here Clusterfile-style hierarchical striping
// (two groups of three storage nodes, 1 MB outer unit, 256 KB inner unit),
// compared against standard round-robin.
package main

import (
	"fmt"
	"log"

	"dpnfs/directpnfs"
)

func run(label string, cfg directpnfs.Config) {
	cl := directpnfs.New(cfg)
	res, err := directpnfs.IOR(cl, directpnfs.IORConfig{
		FileSize: 64 << 20,
		Block:    1 << 20,
		Separate: true,
	})
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	fmt.Printf("  %-22s %7.1f MB/s aggregate write\n", label, res.ThroughputMBs())
}

func main() {
	fmt.Println("Direct-pNFS aggregation drivers (4 clients, 6 storage nodes):")
	base := directpnfs.Config{Arch: directpnfs.ArchDirectPNFS, Clients: 4}

	run("round-robin (standard)", base)

	hier := base
	hier.Aggregation = "hierarchical"
	hier.AggParams = []int64{1 << 20, 256 << 10, 2} // outer, inner, groups
	run("hierarchical (plugin)", hier)

	vs := base
	vs.Aggregation = "variable-stripe"
	vs.AggParams = []int64{4 << 20, 2 << 20, 2 << 20, 1 << 20, 1 << 20, 512 << 10}
	run("variable-stripe (plugin)", vs)
}
