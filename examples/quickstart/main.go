// Quickstart: build a Direct-pNFS cluster, write a striped file with real
// bytes, read it back, and verify integrity — the ten-line tour of the
// public API.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dpnfs/directpnfs"
)

func main() {
	cl := directpnfs.New(directpnfs.Config{
		Arch:    directpnfs.ArchDirectPNFS,
		Clients: 1,
		Real:    true, // carry real bytes end to end
	})

	data := make([]byte, 8<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}

	elapsed, err := cl.Run(func(ctx *directpnfs.Ctx, m *directpnfs.Mount, i int) error {
		f, err := m.Create(ctx, "/hello")
		if err != nil {
			return err
		}
		if err := m.Write(ctx, f, 0, directpnfs.Bytes(data)); err != nil {
			return err
		}
		if err := m.Close(ctx, f); err != nil {
			return err
		}

		g, err := m.Open(ctx, "/hello")
		if err != nil {
			return err
		}
		got, n, err := m.Read(ctx, g, 0, int64(len(data)))
		if err != nil {
			return err
		}
		if n != int64(len(data)) || !bytes.Equal(got.Bytes, data) {
			return fmt.Errorf("read back %d bytes, integrity check failed", n)
		}
		fmt.Printf("pNFS mount holds layouts: %v\n", m.PNFS())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wrote+read %d MB through the Direct-pNFS stack in %v of virtual time\n",
		len(data)>>20, elapsed)
	for _, s := range cl.Stats() {
		fmt.Printf("  %-4s nic tx %8v  rx %8v  disk %8v\n", s.Name, s.NICTx, s.NICRx, s.DiskBusy)
	}
}
