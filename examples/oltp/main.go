// OLTP example: read-modify-write transactions with per-transaction fsync
// (paper §6.4.1).  Every transaction reads a random 8 KB record, rewrites
// it, and forces it to stable storage — the worst case for a parallel file
// system tuned for bulk transfers.
package main

import (
	"fmt"
	"log"

	"dpnfs/directpnfs"
)

func main() {
	const clients = 4
	const txns = 2000

	fmt.Printf("OLTP: %d clients × %d transactions (8 KB read-modify-write + fsync)\n\n",
		clients, txns)
	for _, arch := range []directpnfs.Arch{directpnfs.ArchDirectPNFS, directpnfs.ArchPVFS2} {
		cl := directpnfs.New(directpnfs.Config{Arch: arch, Clients: clients})
		res, err := directpnfs.OLTP(cl, directpnfs.OLTPConfig{
			Transactions: txns,
			FileBytes:    128 << 20,
		})
		if err != nil {
			log.Fatalf("%s: %v", arch, err)
		}
		fmt.Printf("  %-12s %7.1f MB/s  %8.0f txn/s  (%v virtual)\n",
			arch, res.ThroughputMBs(), res.TPS(), res.Elapsed.Round(1e6))
	}
}
