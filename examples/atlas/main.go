// ATLAS example: replay the particle-physics Digitization write trace
// (paper §6.3.1) against Direct-pNFS and native PVFS2 and compare aggregate
// write throughput.  The trace mixes many small requests with a few bulk
// requests; the NFSv4 client's write gathering absorbs the small ones while
// the cacheless PVFS2 client pays per-request overhead for each.
package main

import (
	"fmt"
	"log"

	"dpnfs/directpnfs"
)

func main() {
	const clients = 4
	const perClient = 64 << 20 // scaled-down Digitization data volume

	fmt.Printf("ATLAS digitization replay: %d clients × %d MB\n\n", clients, perClient>>20)
	for _, arch := range []directpnfs.Arch{directpnfs.ArchDirectPNFS, directpnfs.ArchPVFS2} {
		cl := directpnfs.New(directpnfs.Config{Arch: arch, Clients: clients})
		res, err := directpnfs.ATLAS(cl, directpnfs.ATLASConfig{TotalBytes: perClient})
		if err != nil {
			log.Fatalf("%s: %v", arch, err)
		}
		fmt.Printf("  %-12s %7.1f MB/s aggregate (%v virtual)\n",
			arch, res.ThroughputMBs(), res.Elapsed.Round(1e6))
	}
	fmt.Println("\nDirect-pNFS rides out the small-request mix; PVFS2 pays per-request overhead.")
}
